# Empty dependencies file for gcmodel_test.
# This may be replaced when dependencies are built.
