file(REMOVE_RECURSE
  "CMakeFiles/gcmodel_test.dir/gcmodel_test.cpp.o"
  "CMakeFiles/gcmodel_test.dir/gcmodel_test.cpp.o.d"
  "gcmodel_test"
  "gcmodel_test.pdb"
  "gcmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
