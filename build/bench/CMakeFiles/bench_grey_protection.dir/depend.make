# Empty dependencies file for bench_grey_protection.
# This may be replaced when dependencies are built.
