file(REMOVE_RECURSE
  "CMakeFiles/bench_grey_protection.dir/bench_grey_protection.cpp.o"
  "CMakeFiles/bench_grey_protection.dir/bench_grey_protection.cpp.o.d"
  "bench_grey_protection"
  "bench_grey_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grey_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
