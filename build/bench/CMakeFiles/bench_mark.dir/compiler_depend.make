# Empty compiler generated dependencies file for bench_mark.
# This may be replaced when dependencies are built.
