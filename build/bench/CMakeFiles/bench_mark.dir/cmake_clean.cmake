file(REMOVE_RECURSE
  "CMakeFiles/bench_mark.dir/bench_mark.cpp.o"
  "CMakeFiles/bench_mark.dir/bench_mark.cpp.o.d"
  "bench_mark"
  "bench_mark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
