# Empty dependencies file for bench_cimp.
# This may be replaced when dependencies are built.
