file(REMOVE_RECURSE
  "CMakeFiles/bench_cimp.dir/bench_cimp.cpp.o"
  "CMakeFiles/bench_cimp.dir/bench_cimp.cpp.o.d"
  "bench_cimp"
  "bench_cimp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cimp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
