file(REMOVE_RECURSE
  "CMakeFiles/tsogc_heap.dir/Color.cpp.o"
  "CMakeFiles/tsogc_heap.dir/Color.cpp.o.d"
  "CMakeFiles/tsogc_heap.dir/Heap.cpp.o"
  "CMakeFiles/tsogc_heap.dir/Heap.cpp.o.d"
  "libtsogc_heap.a"
  "libtsogc_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsogc_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
