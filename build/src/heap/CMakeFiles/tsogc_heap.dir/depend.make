# Empty dependencies file for tsogc_heap.
# This may be replaced when dependencies are built.
