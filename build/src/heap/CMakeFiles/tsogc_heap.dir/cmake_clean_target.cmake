file(REMOVE_RECURSE
  "libtsogc_heap.a"
)
