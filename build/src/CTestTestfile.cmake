# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("heap")
subdirs("tso")
subdirs("cimp")
subdirs("gcmodel")
subdirs("invariants")
subdirs("explore")
subdirs("litmus")
subdirs("runtime")
subdirs("workload")
