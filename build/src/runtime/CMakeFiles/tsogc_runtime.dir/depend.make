# Empty dependencies file for tsogc_runtime.
# This may be replaced when dependencies are built.
