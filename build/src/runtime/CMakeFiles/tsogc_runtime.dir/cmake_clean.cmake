file(REMOVE_RECURSE
  "CMakeFiles/tsogc_runtime.dir/GcRuntime.cpp.o"
  "CMakeFiles/tsogc_runtime.dir/GcRuntime.cpp.o.d"
  "CMakeFiles/tsogc_runtime.dir/MutatorContext.cpp.o"
  "CMakeFiles/tsogc_runtime.dir/MutatorContext.cpp.o.d"
  "CMakeFiles/tsogc_runtime.dir/RtCollector.cpp.o"
  "CMakeFiles/tsogc_runtime.dir/RtCollector.cpp.o.d"
  "CMakeFiles/tsogc_runtime.dir/RtHeap.cpp.o"
  "CMakeFiles/tsogc_runtime.dir/RtHeap.cpp.o.d"
  "libtsogc_runtime.a"
  "libtsogc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsogc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
