
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/GcRuntime.cpp" "src/runtime/CMakeFiles/tsogc_runtime.dir/GcRuntime.cpp.o" "gcc" "src/runtime/CMakeFiles/tsogc_runtime.dir/GcRuntime.cpp.o.d"
  "/root/repo/src/runtime/MutatorContext.cpp" "src/runtime/CMakeFiles/tsogc_runtime.dir/MutatorContext.cpp.o" "gcc" "src/runtime/CMakeFiles/tsogc_runtime.dir/MutatorContext.cpp.o.d"
  "/root/repo/src/runtime/RtCollector.cpp" "src/runtime/CMakeFiles/tsogc_runtime.dir/RtCollector.cpp.o" "gcc" "src/runtime/CMakeFiles/tsogc_runtime.dir/RtCollector.cpp.o.d"
  "/root/repo/src/runtime/RtHeap.cpp" "src/runtime/CMakeFiles/tsogc_runtime.dir/RtHeap.cpp.o" "gcc" "src/runtime/CMakeFiles/tsogc_runtime.dir/RtHeap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tsogc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
