file(REMOVE_RECURSE
  "libtsogc_runtime.a"
)
