file(REMOVE_RECURSE
  "CMakeFiles/tsogc_explore.dir/Explorer.cpp.o"
  "CMakeFiles/tsogc_explore.dir/Explorer.cpp.o.d"
  "CMakeFiles/tsogc_explore.dir/Export.cpp.o"
  "CMakeFiles/tsogc_explore.dir/Export.cpp.o.d"
  "CMakeFiles/tsogc_explore.dir/Guided.cpp.o"
  "CMakeFiles/tsogc_explore.dir/Guided.cpp.o.d"
  "libtsogc_explore.a"
  "libtsogc_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsogc_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
