# Empty compiler generated dependencies file for tsogc_explore.
# This may be replaced when dependencies are built.
