file(REMOVE_RECURSE
  "libtsogc_explore.a"
)
