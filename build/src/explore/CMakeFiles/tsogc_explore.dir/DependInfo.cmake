
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explore/Explorer.cpp" "src/explore/CMakeFiles/tsogc_explore.dir/Explorer.cpp.o" "gcc" "src/explore/CMakeFiles/tsogc_explore.dir/Explorer.cpp.o.d"
  "/root/repo/src/explore/Export.cpp" "src/explore/CMakeFiles/tsogc_explore.dir/Export.cpp.o" "gcc" "src/explore/CMakeFiles/tsogc_explore.dir/Export.cpp.o.d"
  "/root/repo/src/explore/Guided.cpp" "src/explore/CMakeFiles/tsogc_explore.dir/Guided.cpp.o" "gcc" "src/explore/CMakeFiles/tsogc_explore.dir/Guided.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/invariants/CMakeFiles/tsogc_invariants.dir/DependInfo.cmake"
  "/root/repo/build/src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/tso/CMakeFiles/tsogc_tso.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/tsogc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tsogc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
