file(REMOVE_RECURSE
  "CMakeFiles/tsogc_invariants.dir/Describe.cpp.o"
  "CMakeFiles/tsogc_invariants.dir/Describe.cpp.o.d"
  "CMakeFiles/tsogc_invariants.dir/GcPredicates.cpp.o"
  "CMakeFiles/tsogc_invariants.dir/GcPredicates.cpp.o.d"
  "CMakeFiles/tsogc_invariants.dir/InvariantSuite.cpp.o"
  "CMakeFiles/tsogc_invariants.dir/InvariantSuite.cpp.o.d"
  "libtsogc_invariants.a"
  "libtsogc_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsogc_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
