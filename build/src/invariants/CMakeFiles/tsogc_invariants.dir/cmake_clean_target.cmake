file(REMOVE_RECURSE
  "libtsogc_invariants.a"
)
