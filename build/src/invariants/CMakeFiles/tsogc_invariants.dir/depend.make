# Empty dependencies file for tsogc_invariants.
# This may be replaced when dependencies are built.
