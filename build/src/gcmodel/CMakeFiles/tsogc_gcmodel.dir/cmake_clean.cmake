file(REMOVE_RECURSE
  "CMakeFiles/tsogc_gcmodel.dir/Collector.cpp.o"
  "CMakeFiles/tsogc_gcmodel.dir/Collector.cpp.o.d"
  "CMakeFiles/tsogc_gcmodel.dir/GcDomain.cpp.o"
  "CMakeFiles/tsogc_gcmodel.dir/GcDomain.cpp.o.d"
  "CMakeFiles/tsogc_gcmodel.dir/GcModel.cpp.o"
  "CMakeFiles/tsogc_gcmodel.dir/GcModel.cpp.o.d"
  "CMakeFiles/tsogc_gcmodel.dir/MarkSeq.cpp.o"
  "CMakeFiles/tsogc_gcmodel.dir/MarkSeq.cpp.o.d"
  "CMakeFiles/tsogc_gcmodel.dir/Mutator.cpp.o"
  "CMakeFiles/tsogc_gcmodel.dir/Mutator.cpp.o.d"
  "CMakeFiles/tsogc_gcmodel.dir/SysProcess.cpp.o"
  "CMakeFiles/tsogc_gcmodel.dir/SysProcess.cpp.o.d"
  "libtsogc_gcmodel.a"
  "libtsogc_gcmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsogc_gcmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
