file(REMOVE_RECURSE
  "libtsogc_gcmodel.a"
)
