
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcmodel/Collector.cpp" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/Collector.cpp.o" "gcc" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/Collector.cpp.o.d"
  "/root/repo/src/gcmodel/GcDomain.cpp" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/GcDomain.cpp.o" "gcc" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/GcDomain.cpp.o.d"
  "/root/repo/src/gcmodel/GcModel.cpp" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/GcModel.cpp.o" "gcc" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/GcModel.cpp.o.d"
  "/root/repo/src/gcmodel/MarkSeq.cpp" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/MarkSeq.cpp.o" "gcc" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/MarkSeq.cpp.o.d"
  "/root/repo/src/gcmodel/Mutator.cpp" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/Mutator.cpp.o" "gcc" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/Mutator.cpp.o.d"
  "/root/repo/src/gcmodel/SysProcess.cpp" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/SysProcess.cpp.o" "gcc" "src/gcmodel/CMakeFiles/tsogc_gcmodel.dir/SysProcess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tso/CMakeFiles/tsogc_tso.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/tsogc_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tsogc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
