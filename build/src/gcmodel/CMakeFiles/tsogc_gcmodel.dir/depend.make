# Empty dependencies file for tsogc_gcmodel.
# This may be replaced when dependencies are built.
