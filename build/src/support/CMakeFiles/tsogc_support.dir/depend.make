# Empty dependencies file for tsogc_support.
# This may be replaced when dependencies are built.
