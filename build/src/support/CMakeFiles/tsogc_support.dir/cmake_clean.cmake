file(REMOVE_RECURSE
  "CMakeFiles/tsogc_support.dir/Assert.cpp.o"
  "CMakeFiles/tsogc_support.dir/Assert.cpp.o.d"
  "CMakeFiles/tsogc_support.dir/Random.cpp.o"
  "CMakeFiles/tsogc_support.dir/Random.cpp.o.d"
  "CMakeFiles/tsogc_support.dir/Stats.cpp.o"
  "CMakeFiles/tsogc_support.dir/Stats.cpp.o.d"
  "CMakeFiles/tsogc_support.dir/StringUtils.cpp.o"
  "CMakeFiles/tsogc_support.dir/StringUtils.cpp.o.d"
  "libtsogc_support.a"
  "libtsogc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsogc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
