file(REMOVE_RECURSE
  "libtsogc_support.a"
)
