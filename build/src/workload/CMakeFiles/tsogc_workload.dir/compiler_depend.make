# Empty compiler generated dependencies file for tsogc_workload.
# This may be replaced when dependencies are built.
