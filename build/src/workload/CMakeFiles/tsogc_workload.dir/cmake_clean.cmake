file(REMOVE_RECURSE
  "CMakeFiles/tsogc_workload.dir/Workloads.cpp.o"
  "CMakeFiles/tsogc_workload.dir/Workloads.cpp.o.d"
  "libtsogc_workload.a"
  "libtsogc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsogc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
