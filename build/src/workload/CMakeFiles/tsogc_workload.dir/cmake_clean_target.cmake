file(REMOVE_RECURSE
  "libtsogc_workload.a"
)
