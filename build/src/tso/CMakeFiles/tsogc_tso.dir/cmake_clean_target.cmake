file(REMOVE_RECURSE
  "libtsogc_tso.a"
)
