# Empty dependencies file for tsogc_tso.
# This may be replaced when dependencies are built.
