file(REMOVE_RECURSE
  "CMakeFiles/tsogc_tso.dir/MemLoc.cpp.o"
  "CMakeFiles/tsogc_tso.dir/MemLoc.cpp.o.d"
  "CMakeFiles/tsogc_tso.dir/MemoryState.cpp.o"
  "CMakeFiles/tsogc_tso.dir/MemoryState.cpp.o.d"
  "libtsogc_tso.a"
  "libtsogc_tso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsogc_tso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
