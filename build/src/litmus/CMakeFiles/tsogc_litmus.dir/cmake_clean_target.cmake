file(REMOVE_RECURSE
  "libtsogc_litmus.a"
)
