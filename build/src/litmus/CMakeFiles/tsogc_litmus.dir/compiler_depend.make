# Empty compiler generated dependencies file for tsogc_litmus.
# This may be replaced when dependencies are built.
