file(REMOVE_RECURSE
  "CMakeFiles/tsogc_litmus.dir/Litmus.cpp.o"
  "CMakeFiles/tsogc_litmus.dir/Litmus.cpp.o.d"
  "libtsogc_litmus.a"
  "libtsogc_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsogc_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
