#!/bin/sh
# Lint the documentation set:
#
#   docs_check.sh [REPO_ROOT]
#
# 1. Dead-link check: every relative markdown link in README.md and
#    docs/*.md must resolve to an existing file (http(s)/mailto links and
#    pure #fragment anchors are skipped; a #fragment suffix on a file link
#    is stripped before the existence check).
# 2. Bench-export check: every BENCH_<x>.json name mentioned in the docs
#    must correspond to a bench/bench_<x>.cpp source, and every name in
#    run_benches.sh's required-export list must be documented in
#    docs/OBSERVABILITY.md — the doc table and the enforcement list cannot
#    drift apart silently.
#
# Exits non-zero listing every offence; wired up as the `docs_check` ctest.

set -u

ROOT="${1:-.}"
STATUS=0

DOCS="$ROOT/README.md"
for f in "$ROOT"/docs/*.md; do
  [ -f "$f" ] && DOCS="$DOCS $f"
done

# --- 1. dead relative links ------------------------------------------------
for doc in $DOCS; do
  dir=$(dirname "$doc")
  # Extract markdown link targets: [text](target). One per line; tolerate
  # several links on a line.
  grep -o '\[[^][]*\]([^()]*)' "$doc" 2>/dev/null | sed 's/.*(\(.*\))/\1/' |
    while IFS= read -r target; do
      case "$target" in
      http://* | https://* | mailto:* | "#"*) continue ;;
      esac
      path="${target%%#*}"
      [ -n "$path" ] || continue
      if [ ! -e "$dir/$path" ] && [ ! -e "$ROOT/$path" ]; then
        echo "docs_check: dead link in $(basename "$doc"): $target"
      fi
    done > /tmp/docs_check_dead.$$ 2>&1
  if [ -s /tmp/docs_check_dead.$$ ]; then
    cat /tmp/docs_check_dead.$$ >&2
    STATUS=1
  fi
  rm -f /tmp/docs_check_dead.$$
done

# --- 2. documented bench exports exist as bench sources --------------------
for doc in $DOCS; do
  grep -o 'BENCH_[a-z0-9_]*\.json' "$doc" 2>/dev/null | sort -u |
    while IFS= read -r export_name; do
      stem=${export_name#BENCH_}
      stem=${stem%.json}
      if [ ! -f "$ROOT/bench/bench_${stem}.cpp" ]; then
        echo "docs_check: $(basename "$doc") mentions $export_name but bench/bench_${stem}.cpp does not exist"
      fi
    done > /tmp/docs_check_bench.$$ 2>&1
  if [ -s /tmp/docs_check_bench.$$ ]; then
    cat /tmp/docs_check_bench.$$ >&2
    STATUS=1
  fi
  rm -f /tmp/docs_check_bench.$$
done

# --- 3. required exports in run_benches.sh are documented -------------------
if [ -f "$ROOT/run_benches.sh" ] && [ -f "$ROOT/docs/OBSERVABILITY.md" ]; then
  grep -o 'BENCH_[a-z0-9_]*\.json' "$ROOT/run_benches.sh" | sort -u |
    while IFS= read -r required; do
      if ! grep -q "$required" "$ROOT/docs/OBSERVABILITY.md"; then
        echo "docs_check: required export $required (run_benches.sh) is not documented in docs/OBSERVABILITY.md"
      fi
    done > /tmp/docs_check_req.$$ 2>&1
  if [ -s /tmp/docs_check_req.$$ ]; then
    cat /tmp/docs_check_req.$$ >&2
    STATUS=1
  fi
  rm -f /tmp/docs_check_req.$$
fi

# --- 4. enforced scale-out export rows are documented -----------------------
# run_benches.sh pins the scale_out.* rows of BENCH_model_checker.json;
# each pinned key must appear in docs/OBSERVABILITY.md so the enforcement
# and the documentation cannot drift apart.
if [ -f "$ROOT/run_benches.sh" ] && [ -f "$ROOT/docs/OBSERVABILITY.md" ]; then
  grep -o 'scale_out\.[a-z0-9_.]*[a-z0-9_]' "$ROOT/run_benches.sh" | sort -u |
    while IFS= read -r key; do
      if ! grep -Fq "$key" "$ROOT/docs/OBSERVABILITY.md"; then
        echo "docs_check: enforced scale-out row $key (run_benches.sh) is not documented in docs/OBSERVABILITY.md"
      fi
    done > /tmp/docs_check_scale.$$ 2>&1
  if [ -s /tmp/docs_check_scale.$$ ]; then
    cat /tmp/docs_check_scale.$$ >&2
    STATUS=1
  fi
  rm -f /tmp/docs_check_scale.$$
fi

if [ "$STATUS" = 0 ]; then
  echo "docs_check: OK"
fi
exit $STATUS
