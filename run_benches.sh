#!/bin/sh
# Regenerate bench_output.txt: every benchmark binary, default settings.
for b in build/bench/bench_*; do
  echo "===== $b ====="
  "$b"
  echo
done
