#!/bin/sh
# Run every benchmark binary and export schema-versioned metrics.
#
#   run_benches.sh [--smoke] [BUILD_DIR]
#
# For each BUILD_DIR/bench/bench_X: the google-benchmark console table goes
# to stdout, and the binary's metrics registry (bench/BenchReport.h) is
# exported to BENCH_X.json in the current directory — one JSON document per
# binary, schema "tsogc-bench-v1" (docs/OBSERVABILITY.md).
#
# --smoke shrinks the per-benchmark measuring time to the minimum; the
# point is exercising every binary and validating every export, not stable
# timings.
#
# Exit status is non-zero if any binary fails, or any export is missing,
# empty, or not carrying the schema tag.

set -u

SMOKE=0
BUILD=build
for arg in "$@"; do
  case "$arg" in
  --smoke) SMOKE=1 ;;
  -h | --help)
    sed -n '2,17p' "$0" | sed 's/^# \{0,1\}//'
    exit 0
    ;;
  *) BUILD="$arg" ;;
  esac
done

BENCH_DIR="$BUILD/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "run_benches.sh: no $BENCH_DIR — build first (cmake --build $BUILD)" >&2
  exit 2
fi

EXTRA_ARGS=""
if [ "$SMOKE" = 1 ]; then
  EXTRA_ARGS="--benchmark_min_time=0.01"
fi

STATUS=0
RAN=0
for b in "$BENCH_DIR"/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  out="BENCH_${name#bench_}.json"
  RAN=$((RAN + 1))
  echo "===== $name ====="
  rm -f "$out"
  if ! TSOGC_BENCH_JSON="$out" TSOGC_BENCH_NAME="$name" "$b" $EXTRA_ARGS; then
    echo "run_benches.sh: $name exited non-zero" >&2
    STATUS=1
    echo
    continue
  fi
  if [ ! -s "$out" ]; then
    echo "run_benches.sh: $name wrote no $out" >&2
    STATUS=1
  elif ! grep -q '"schema":"tsogc-bench-v1"' "$out"; then
    echo "run_benches.sh: $out is malformed (schema tag missing)" >&2
    STATUS=1
  else
    echo "exported $out"
  fi
  echo
done

if [ "$RAN" = 0 ]; then
  echo "run_benches.sh: no bench binaries found under $BENCH_DIR" >&2
  exit 2
fi

# Required exports: suites CI depends on must actually have been produced
# (a bench binary silently dropped from the build would otherwise pass).
for required in BENCH_mark_throughput.json; do
  if [ ! -s "$required" ]; then
    echo "run_benches.sh: required export $required was not produced" >&2
    STATUS=1
  fi
done
exit $STATUS
