#!/bin/sh
# Run every benchmark binary and export schema-versioned metrics.
#
#   run_benches.sh [--smoke] [BUILD_DIR]
#
# For each BUILD_DIR/bench/bench_X: the google-benchmark console table goes
# to stdout, and the binary's metrics registry (bench/BenchReport.h) is
# exported to BENCH_X.json in the current directory — one JSON document per
# binary, schema "tsogc-bench-v1" (docs/OBSERVABILITY.md).
#
# --smoke shrinks the per-benchmark measuring time to the minimum; the
# point is exercising every binary and validating every export, not stable
# timings.
#
# Each binary runs under a timeout ($TSOGC_BENCH_TIMEOUT seconds, default
# 300) so one hung bench cannot stall the whole sweep; the failure message
# names the offending binary. A warning is printed when an export reports
# dropped trace events (trace.dropped_total > 0): the ring was too small
# for the run and the Chrome timeline has holes.
#
# Exit status is non-zero if any binary fails, times out, or any export is
# missing, empty, or not carrying the schema tag.

set -u

SMOKE=0
BUILD=build
for arg in "$@"; do
  case "$arg" in
  --smoke) SMOKE=1 ;;
  -h | --help)
    sed -n '2,17p' "$0" | sed 's/^# \{0,1\}//'
    exit 0
    ;;
  *) BUILD="$arg" ;;
  esac
done

BENCH_DIR="$BUILD/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "run_benches.sh: no $BENCH_DIR — build first (cmake --build $BUILD)" >&2
  exit 2
fi

EXTRA_ARGS=""
if [ "$SMOKE" = 1 ]; then
  EXTRA_ARGS="--benchmark_min_time=0.01"
fi

# Per-bench wall-clock budget. `timeout` is coreutils; degrade gracefully
# where it is missing rather than refusing to run.
BENCH_TIMEOUT="${TSOGC_BENCH_TIMEOUT:-300}"
if command -v timeout >/dev/null 2>&1; then
  RUN_UNDER="timeout $BENCH_TIMEOUT"
else
  RUN_UNDER=""
  echo "run_benches.sh: no 'timeout' binary; running without a per-bench limit" >&2
fi

STATUS=0
RAN=0
FAILED=""
for b in "$BENCH_DIR"/bench_*; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  out="BENCH_${name#bench_}.json"
  RAN=$((RAN + 1))
  echo "===== $name ====="
  rm -f "$out"
  TSOGC_BENCH_JSON="$out" TSOGC_BENCH_NAME="$name" $RUN_UNDER "$b" $EXTRA_ARGS
  rc=$?
  if [ "$rc" -ne 0 ]; then
    if [ "$rc" -eq 124 ]; then
      echo "run_benches.sh: $name timed out after ${BENCH_TIMEOUT}s" >&2
    else
      echo "run_benches.sh: $name exited non-zero ($rc)" >&2
    fi
    STATUS=1
    FAILED="$FAILED $name"
    echo
    continue
  fi
  if [ ! -s "$out" ]; then
    echo "run_benches.sh: $name wrote no $out" >&2
    STATUS=1
    FAILED="$FAILED $name"
  elif ! grep -q '"schema":"tsogc-bench-v1"' "$out"; then
    echo "run_benches.sh: $out from $name is malformed (schema tag missing)" >&2
    STATUS=1
    FAILED="$FAILED $name"
  else
    echo "exported $out"
    # Dropped trace events mean the ring wrapped mid-run: the export's
    # timeline is incomplete. Loud, but not fatal.
    dropped=$(sed -n 's/.*"trace\.dropped_total":{[^}]*"value":\([0-9]*\).*/\1/p' "$out")
    if [ -n "$dropped" ] && [ "$dropped" -gt 0 ]; then
      echo "run_benches.sh: warning: $name dropped $dropped trace events (raise RtConfig::TraceBufferEvents)" >&2
    fi
  fi
  echo
done

if [ "$RAN" = 0 ]; then
  echo "run_benches.sh: no bench binaries found under $BENCH_DIR" >&2
  exit 2
fi
if [ -n "$FAILED" ]; then
  echo "run_benches.sh: failing benches:$FAILED" >&2
fi

# Required exports: suites CI depends on must actually have been produced
# (a bench binary silently dropped from the build would otherwise pass).
MISSING=0
for required in BENCH_alloc.json BENCH_mark_throughput.json \
  BENCH_observatory.json BENCH_workload_ledger.json \
  BENCH_model_checker.json; do
  if [ ! -s "$required" ]; then
    echo "run_benches.sh: required export $required was not produced" >&2
    MISSING=1
    STATUS=1
  fi
done
# The model-checker export must carry the state-space scale-out rows:
# full-vs-reduced counts for the larger verified instance (EXPERIMENTS.md
# "State-space scale-out"). A bench refactor that silently drops them
# would otherwise go unnoticed until the docs table rots.
if [ -s BENCH_model_checker.json ]; then
  for key in 'scale_out.full.explore.states' \
    'scale_out.ample.explore.transitions_pruned' \
    'scale_out.symmetry.fold_ratio' \
    'scale_out.fp64.explore.visited_bytes' \
    'scale_out.swarm.explore.bloom_bits'; do
    if ! grep -Fq "\"$key\"" BENCH_model_checker.json; then
      echo "run_benches.sh: BENCH_model_checker.json is missing scale-out row $key" >&2
      STATUS=1
    fi
  done
fi
if [ "$MISSING" = 1 ]; then
  # Name what DID export, so a missing-required failure is diagnosable
  # from the CI log alone (wrong build dir vs. dropped bench vs. typo).
  produced=$(ls BENCH_*.json 2>/dev/null | tr '\n' ' ')
  echo "run_benches.sh: exports that were produced: ${produced:-(none)}" >&2
fi
exit $STATUS
